// Command samsim runs one SQL query from the paper's dialect against a
// chosen memory design and prints the cycle, traffic, and energy report.
//
// Usage:
//
//	samsim -design SAM-en -query "SELECT SUM(f9) FROM Ta WHERE f10 > 2"
//	samsim -design baseline -bench Q3
//	samsim -design RC-NVM-wd -bench Qs2 -ta 4096
//	samsim -design SAM-en -bench Q3 -compare -workers 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/etrace"
	"sam/internal/fault"
	"sam/internal/imdb"
	"sam/internal/mc"
	"sam/internal/obs"
	"sam/internal/prof"
	"sam/internal/runner"
	"sam/internal/sim"
	"sam/internal/sql"
	"sam/internal/stats"
	"sam/internal/trace"
)

func kindByName(name string) (design.Kind, error) {
	if k, ok := core.KindByName(name); ok {
		return k, nil
	}
	return 0, fmt.Errorf("unknown design %q (try %s)", name, strings.Join(core.KindNames(), ", "))
}

func main() {
	designName := flag.String("design", "SAM-en", "memory design to simulate")
	query := flag.String("query", "", "SQL query text (Table 3 dialect)")
	benchName := flag.String("bench", "", "run a named benchmark query (Q1..Q12, Qs1..Qs6) instead of -query")
	taRecords := flag.Int("ta", 0, "records in Ta (0 = default)")
	tbRecords := flag.Int("tb", 0, "records in Tb (0 = default)")
	compare := flag.Bool("compare", false, "also run the baseline and report speedup")
	workers := flag.Int("workers", 0, "max parallel simulations for -compare (0 = GOMAXPROCS)")
	faultChip := flag.Int("faultchip", -1, "inject a dead chip at this index on every rank (chipkill study)")
	faultRate := flag.Float64("fault-rate", 0, "per-burst transient fault probability (0..1)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-injection seed (0 = workload seed)")
	faultChips := flag.String("fault-chips", "", "comma-separated dead-chip indices, each as chip or rank:chip (-1 rank = all)")
	faultStuck := flag.String("fault-stuck", "", "comma-separated stuck DQ lines, each as chip:dq:value (value 0 or 1)")
	faultRetries := flag.Int("fault-retries", mc.DefaultConfig().MaxRetries, "read-retry budget before poisoning (0 = poison on first DUE)")
	shardWorkers := flag.Int("shard-workers", 0, "run-engine event-domain workers: 0 = auto (min(channels, GOMAXPROCS)), 1 = serial, >=2 = force sharding")
	traceOut := flag.String("trace", "", "dump the memory request trace to this file")
	eventOut := flag.String("trace-out", "", "write a cycle-accurate Chrome/Perfetto trace-event JSON to this file")
	traceCSV := flag.String("trace-csv", "", "write the windowed time-series samples as CSV to this file")
	traceWindow := flag.Int64("trace-window", 2048, "sampling window for the trace time series (bus cycles)")
	traceLimit := flag.Int("trace-limit", etrace.DefaultCapacity, "event-ring capacity; oldest events drop beyond this")
	statsJSON := flag.String("stats-json", "", "write the full run report as JSON to this file ('-' for stdout)")
	cacheDir := flag.String("cache-dir", "", "persist memoized run results in this directory (warm re-runs skip simulation)")
	noCache := flag.Bool("no-cache", false, "disable run memoization entirely (overrides -cache-dir)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// fail closes the (idempotent, nil-safe) plane first: os.Exit skips
	// the deferred Close, and an aborted run should still summarize its
	// event log.
	var plane *obs.Plane
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "samsim:", err)
		_ = plane.Close()
		os.Exit(1)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	kind, err := kindByName(*designName)
	if err != nil {
		fail(err)
	}
	w := core.DefaultWorkload()
	if *taRecords > 0 {
		w.TaRecords = *taRecords
	}
	if *tbRecords > 0 {
		w.TbRecords = *tbRecords
	}

	var bench core.BenchQuery
	switch {
	case *benchName != "":
		found := false
		for _, q := range core.Benchmark() {
			if q.Name == *benchName {
				bench, found = q, true
				break
			}
		}
		if !found {
			fail(fmt.Errorf("unknown benchmark query %q", *benchName))
		}
	case *query != "":
		bench = core.BenchQuery{Name: "adhoc", SQL: *query, Params: sql.Params{}}
	default:
		fail(fmt.Errorf("provide -query or -bench"))
	}

	faults, err := buildFaultModel(*faultChip, *faultRate, *faultSeed, *faultChips, *faultStuck, *faultRetries, w.Seed)
	if err != nil {
		fail(err)
	}

	// Runs without attached extras route through the memo cache; with
	// -cache-dir a repeat of the same (design, workload, query) replays
	// from disk instead of simulating. Hand-built systems (fault models,
	// tracers, forced sharding) always execute for real.
	var cache *core.Memo
	if !*noCache {
		cache = core.NewMemo(core.MemoOptions{Dir: *cacheDir})
	}
	runOne := func(k design.Kind, q core.BenchQuery) (*sim.QueryResult, error) {
		if cache == nil {
			return core.RunOne(k, design.Options{}, w, q)
		}
		return cache.RunOne(k, design.Options{}, w, q)
	}

	plane, err = obsFlags.Start(os.Stderr)
	if err != nil {
		fail(err)
	}
	if cache != nil {
		plane.AddSource(cache.StatsSnapshot)
	}
	defer func() {
		if err := plane.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samsim: obs:", err)
		}
	}()

	eventTracing := *eventOut != "" || *traceCSV != ""
	var res, base *sim.QueryResult
	if faults != nil || *traceOut != "" || eventTracing || *shardWorkers != 0 {
		// Build the system by hand so the extras can be attached.
		d := design.New(kind, design.Options{})
		s := sim.NewSystem(d)
		s.ShardWorkers = *shardWorkers
		s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
		s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
		if faults != nil {
			s.Faults = faults
		}
		if *traceOut != "" {
			s.TraceSink = &trace.Trace{}
		}
		var buf *etrace.Buffer
		var sp *etrace.Sampler
		if eventTracing {
			buf = etrace.NewBuffer(*traceLimit)
			buf.Name = kind.String()
			sp = etrace.NewSampler(*traceWindow)
			sp.Name = kind.String()
			s.AttachEventTrace(buf, sp)
		}
		params := bench.Params
		if params == nil {
			params = sql.Params{}
		}
		finish := plane.Single("run")
		res, err = s.RunQuery(bench.SQL, params)
		finish(err)
		if err != nil {
			fail(err)
		}
		if *traceOut != "" {
			f, ferr := os.Create(*traceOut)
			if ferr != nil {
				fail(ferr)
			}
			if ferr := s.TraceSink.Write(f); ferr != nil {
				fail(ferr)
			}
			f.Close()
			fmt.Printf("trace         %d requests -> %s\n", s.TraceSink.Len(), *traceOut)
		}
		if *eventOut != "" {
			if err := writeChromeFile(*eventOut, []*etrace.Buffer{buf}, []*etrace.Sampler{sp}); err != nil {
				fail(err)
			}
			fmt.Printf("event trace   %d events (%d dropped), %d samples -> %s\n",
				buf.Len(), buf.Dropped(), len(sp.Samples), *eventOut)
		}
		if *traceCSV != "" {
			if err := writeCSVFile(*traceCSV, sp); err != nil {
				fail(err)
			}
			fmt.Printf("trace csv     %d samples (window %d cycles) -> %s\n",
				len(sp.Samples), sp.Window, *traceCSV)
		}
	} else if *compare && kind != design.Baseline {
		// The design and its baseline are independent runs; fan them out
		// on the worker pool.
		runs, rerr := runner.Map(ctx, []design.Kind{kind, design.Baseline},
			runner.Options{Workers: *workers, Observer: plane.Hooks("compare")},
			func(_ context.Context, _ int, k design.Kind) (*sim.QueryResult, error) {
				r, err := runOne(k, bench)
				if err != nil {
					return nil, fmt.Errorf("%v: %w", k, err)
				}
				return r, nil
			})
		if rerr != nil {
			fail(rerr)
		}
		res, base = runs[0], runs[1]
	} else {
		finish := plane.Single("run")
		res, err = runOne(kind, bench)
		finish(err)
		if err != nil {
			fail(err)
		}
	}
	report(kind.String(), bench, res)
	if *compare && kind != design.Baseline {
		if base == nil { // fault/trace path: baseline still to run
			base, err = runOne(design.Baseline, bench)
			if err != nil {
				fail(err)
			}
		}
		fmt.Printf("\nspeedup vs baseline: %.2fx (baseline %d cycles)\n",
			sim.Speedup(base.Stats, res.Stats), base.Stats.Cycles)
	}
	var memoSnap *stats.Snapshot
	if cache != nil {
		if ct := cache.Counters(); ct.Lookups() > 0 {
			memoSnap = cache.StatsSnapshot()
			fmt.Fprintf(os.Stderr, "samsim: memo: %v\n", ct)
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, kind.String(), bench, res, memoSnap); err != nil {
			fail(err)
		}
	}
}

// buildFaultModel assembles the run's fault configuration from the -fault-*
// flags (nil when no fault option is set). The legacy -faultchip maps to a
// dead chip on every rank.
func buildFaultModel(legacyChip int, rate float64, seed uint64, chips, stuck string, retries int, wseed uint64) (*sim.FaultModel, error) {
	cfg := &sim.FaultModel{Seed: seed, Rate: rate, MaxRetries: retries}
	if cfg.Seed == 0 {
		cfg.Seed = wseed
	}
	if legacyChip >= 0 {
		cfg.DeadChips = append(cfg.DeadChips, fault.ChipFault{Rank: -1, Chip: legacyChip})
	}
	if chips != "" {
		for _, tok := range strings.Split(chips, ",") {
			parts := strings.Split(strings.TrimSpace(tok), ":")
			var err error
			cf := fault.ChipFault{Rank: -1}
			switch len(parts) {
			case 1:
				cf.Chip, err = strconv.Atoi(parts[0])
			case 2:
				if cf.Rank, err = strconv.Atoi(parts[0]); err == nil {
					cf.Chip, err = strconv.Atoi(parts[1])
				}
			default:
				err = fmt.Errorf("want chip or rank:chip")
			}
			if err != nil {
				return nil, fmt.Errorf("-fault-chips %q: %v", tok, err)
			}
			cfg.DeadChips = append(cfg.DeadChips, cf)
		}
	}
	if stuck != "" {
		for _, tok := range strings.Split(stuck, ",") {
			parts := strings.Split(strings.TrimSpace(tok), ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("-fault-stuck %q: want chip:dq:value", tok)
			}
			var sd fault.StuckDQ
			sd.Rank = -1
			var err error
			if sd.Chip, err = strconv.Atoi(parts[0]); err == nil {
				if sd.DQ, err = strconv.Atoi(parts[1]); err == nil {
					var v int
					v, err = strconv.Atoi(parts[2])
					sd.Value = byte(v)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("-fault-stuck %q: %v", tok, err)
			}
			cfg.StuckDQs = append(cfg.StuckDQs, sd)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Active() {
		return nil, nil
	}
	return cfg, nil
}

func writeChromeFile(path string, bufs []*etrace.Buffer, sps []*etrace.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := etrace.WriteChrome(f, bufs, sps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSVFile(path string, sp *etrace.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := etrace.WriteCSV(f, sp); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statsReport is the machine-readable form of the run: functional results
// plus the full sim.RunStats, including the per-class latency/occupancy
// histogram snapshot (Stats.Metrics) and per-bank accounting
// (Stats.Device.PerBank, Stats.BankActPreNJ).
type statsReport struct {
	Design     string
	Query      string
	SQL        string
	Rows       int
	Aggregates []float64
	Stats      sim.RunStats
	// Memo is the run's cache instrument snapshot (memo.hits,
	// memo.misses, memo.inflight_dedup counters and the memo.bytes
	// gauge); absent when memoization is disabled or unused.
	Memo *stats.Snapshot `json:",omitempty"`
}

func writeStatsJSON(path, designName string, q core.BenchQuery, r *sim.QueryResult, memoSnap *stats.Snapshot) error {
	out := statsReport{
		Design:     designName,
		Query:      q.Name,
		SQL:        q.SQL,
		Rows:       r.Rows,
		Aggregates: r.Aggregates,
		Stats:      r.Stats,
		Memo:       memoSnap,
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}

func report(designName string, q core.BenchQuery, r *sim.QueryResult) {
	st := r.Stats
	fmt.Printf("design        %s\n", designName)
	fmt.Printf("query         %s: %s\n", q.Name, q.SQL)
	fmt.Printf("rows          %d\n", r.Rows)
	for i, agg := range r.Aggregates {
		fmt.Printf("aggregate[%d]  %.6g\n", i, agg)
	}
	fmt.Printf("cycles        %d (%.3f ms at 1200 MHz bus)\n", st.Cycles, st.Seconds(1200)*1e3)
	fmt.Printf("mem requests  %d (row-hit rate %.1f%%)\n", st.MemRequests, st.RowHitRate*100)
	fmt.Printf("device        ACT=%d RD=%d WR=%d sRD=%d sWR=%d REF=%d modeSwitch=%d\n",
		st.Device.Acts, st.Device.Reads, st.Device.Writes,
		st.Device.StrideReads, st.Device.StrideWrites, st.Device.Refs, st.Device.ModeSwitches)
	fmt.Printf("energy        %.2f uJ (bg %.1f%%, act %.1f%%, rd/wr %.1f%%, ref %.1f%%)\n",
		st.Energy.Total()/1e3,
		pct(st.Energy.Background, st.Energy.Total()),
		pct(st.Energy.ActPre, st.Energy.Total()),
		pct(st.Energy.RdWr, st.Energy.Total()),
		pct(st.Energy.Refresh, st.Energy.Total()))
	fmt.Printf("avg power     %.0f mW\n", st.PowerMW.Total())
	if rel := st.Reliability; rel != nil {
		fmt.Printf("fault model   %d bursts probed, %d injected, %d corrected (%d symbols), %d DUE, %d silent\n",
			rel.Bursts, rel.Injected, rel.CorrectedBursts, rel.CorrectedSymbols,
			rel.DUEs, rel.SilentCorruptions)
		fmt.Printf("reliability   %d retries, %d poisoned lines\n",
			st.Controller.Retries, st.Controller.Poisoned)
	}
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return part / whole * 100
}
