// Command samfig regenerates the paper's tables and figures (Section 6) as
// plain-text tables or CSV. Every figure's grid of independent simulations
// runs on a bounded worker pool; the emitted tables are byte-identical for
// any -workers value, and Ctrl-C cancels a sweep mid-flight.
//
// Usage:
//
//	samfig -exp all
//	samfig -exp fig12 -ta 16384 -tb 131072
//	samfig -exp fig15a -csv
//	samfig -exp all -small -workers 8 -progress
//	samfig -exp fig12 -cache-dir .samcache   # warm re-runs skip simulation
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/etrace"
	"sam/internal/memo"
	"sam/internal/obs"
	"sam/internal/prof"
	"sam/internal/sim"
	"sam/internal/stats"
)

// metricEntry is one simulation's statistics inside a figure's metrics
// dump: the figure cell it belongs to plus the full run report.
type metricEntry struct {
	X      string
	Design string
	Stats  sim.RunStats
}

// metricsFile is the on-disk shape of <metrics-dir>/<figID>.json: every
// run's statistics in emission order, plus the merge of all histogram
// snapshots across the figure (a stats.Snapshot.Merge exercise — entries
// arrive in the drivers' fixed aggregation order, so the file is
// byte-identical for any -workers value).
type metricsFile struct {
	Figure  string
	Entries []metricEntry
	Merged  *stats.Snapshot
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, table3, fig12, fig13, fig14a, fig14b, fig14c, fig15a..fig15i, reliability, all")
	taRecords := flag.Int("ta", 0, "records in the wide table Ta (0 = default)")
	tbRecords := flag.Int("tb", 0, "records in the narrow table Tb (0 = default)")
	sweepRecords := flag.Int("sweep-records", 2048, "table records per Fig.15 sweep point")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	small := flag.Bool("small", false, "use the small (test-scale) workload")
	workers := flag.Int("workers", 0, "max parallel simulations per sweep (0 = GOMAXPROCS, 1 = serial)")
	progress := flag.Bool("progress", false, "report per-sweep progress on stderr")
	metricsDir := flag.String("metrics-dir", "", "dump per-figure run metrics as JSON files into this directory")
	cacheDir := flag.String("cache-dir", "", "persist memoized run results in this directory (warm re-runs skip simulation)")
	noCache := flag.Bool("no-cache", false, "disable run memoization entirely (overrides -cache-dir)")
	relOut := flag.String("reliability-out", "", "write the reliability campaign summary as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a side-by-side Chrome/Perfetto event trace of -trace-design vs the baseline, then exit (skips -exp)")
	traceBench := flag.String("trace-bench", "Q3", "benchmark query to trace with -trace-out")
	traceDesign := flag.String("trace-design", "SAM-en", "design to trace against the baseline")
	traceWindow := flag.Int64("trace-window", 2048, "sampling window for the trace time series (bus cycles)")
	traceLimit := flag.Int("trace-limit", etrace.DefaultCapacity, "event-ring capacity per design; oldest events drop beyond this")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	w := core.DefaultWorkload()
	if *small {
		w = core.SmallWorkload()
	}
	if *taRecords > 0 {
		w.TaRecords = *taRecords
	}
	if *tbRecords > 0 {
		w.TbRecords = *tbRecords
	}

	// fail closes the plane before exiting so an aborted run (a cancelled
	// sweep, a failed figure) still gets its event-log summary; os.Exit
	// skips the deferred Close, and Close is idempotent for the normal
	// path.
	var plane *obs.Plane
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "samfig:", err)
		_ = plane.Close()
		os.Exit(1)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	if *traceOut != "" {
		if err := runTraced(w, *traceDesign, *traceBench, *traceOut, *traceWindow, *traceLimit); err != nil {
			fail(err)
		}
		return
	}

	// One memo cache is shared across every figure and sweep of the
	// invocation, so `-exp all` simulates each distinct (design, workload,
	// query) cell once no matter how many figures evaluate it. Figures are
	// byte-identical with the cache on or off; -no-cache recovers the
	// run-everything behaviour, -cache-dir adds the persistent tier.
	var cache *core.Memo
	if !*noCache {
		cache = core.NewMemo(core.MemoOptions{Dir: *cacheDir})
	}

	// The observability plane (nil when both flags are off) serves live
	// /metrics, /progress, and the stall watchdog while figures run, and
	// appends the JSONL run-lifecycle event log.
	plane, err = obsFlags.Start(os.Stderr)
	if err != nil {
		fail(err)
	}
	if cache != nil {
		plane.AddSource(cache.StatsSnapshot)
	}
	defer func() {
		if err := plane.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "samfig: obs:", err)
		}
	}()

	// collected gathers per-run metrics by figure ID, in emission order
	// (the drivers call Par.Metrics from their deterministic aggregation
	// loops, never from workers).
	collected := map[string]*metricsFile{}
	var collectedOrder []string

	// par builds the per-sweep parallelism config; the progress callback
	// rewrites one stderr line per completed simulation of that sweep.
	par := func(name string) core.Par {
		p := core.Par{Workers: *workers, Memo: cache, Observer: plane.Hooks(name)}
		if *progress {
			p.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", name, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		if *metricsDir != "" {
			p.Metrics = func(figID, x, designName string, st sim.RunStats) {
				mf, ok := collected[figID]
				if !ok {
					mf = &metricsFile{Figure: figID, Merged: &stats.Snapshot{}}
					collected[figID] = mf
					collectedOrder = append(collectedOrder, figID)
				}
				mf.Entries = append(mf.Entries, metricEntry{X: x, Design: designName, Stats: st})
				if err := mf.Merged.Merge(st.Metrics); err != nil {
					fail(fmt.Errorf("%s: %w", figID, err))
				}
			}
		}
		return p
	}

	emit := func(title string, tb *stats.Table) {
		fmt.Printf("== %s ==\n", title)
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Print(tb.String())
		}
		fmt.Println()
	}

	wants := func(name string) bool {
		return *exp == "all" || *exp == name
	}

	if wants("table1") {
		emit("Table 1: qualitative comparison (+/o/x)", core.Table1())
	}
	if wants("table2") {
		emit("Table 2: simulated system parameters", core.Table2())
	}
	if wants("table3") {
		tb, err := core.Table3()
		if err != nil {
			fail(err)
		}
		emit("Table 3: benchmark queries (parsed and planned)", tb)
	}
	if wants("fig12") {
		fig, err := core.Fig12(ctx, w, par("fig12"))
		if err != nil {
			fail(err)
		}
		emit("Fig 12: speedup vs row-store baseline", fig.Table())
	}
	if wants("fig13") {
		rows, err := core.Fig13(ctx, w, par("fig13"))
		if err != nil {
			fail(err)
		}
		tb := stats.NewTable("category", "design", "bg mW", "rd/wr mW", "act mW", "total mW", "energy eff")
		for _, r := range rows {
			tb.AddRow(r.Category, r.Design,
				fmt.Sprintf("%.0f", r.Background), fmt.Sprintf("%.0f", r.RdWr),
				fmt.Sprintf("%.0f", r.ActPre), fmt.Sprintf("%.0f", r.TotalMW),
				fmt.Sprintf("%.2f", r.EnergyEff))
		}
		emit("Fig 13: power and normalized energy efficiency", tb)
	}
	if wants("fig14a") {
		fig, err := core.Fig14a(ctx, w, par("fig14a"))
		if err != nil {
			fail(err)
		}
		emit("Fig 14a: substrate swap (all-query gmean speedup)", fig.Table())
	}
	if wants("fig14b") {
		fig, err := core.Fig14b(ctx, w, par("fig14b"))
		if err != nil {
			fail(err)
		}
		emit("Fig 14b: strided granularity sweep (Q-query gmean)", fig.Table())
	}
	if wants("fig14c") {
		emit("Fig 14c: area and storage overhead", core.Fig14c().Table())
	}
	if wants("reliability") {
		camp := core.DefaultReliabilityCampaign()
		results, err := core.RunReliability(ctx, camp, par("reliability"))
		if err != nil {
			fail(err)
		}
		tb := stats.NewTable("design", "bits", "scheme", "model", "rate",
			"bursts", "injected", "corrected", "DUE", "silent", "retries", "poisoned")
		for _, r := range results {
			rate := "-"
			if r.Model == core.ModelTransient {
				rate = fmt.Sprintf("%g", r.Rate)
			}
			tb.AddRow(r.Design, fmt.Sprintf("%d", r.Bits), r.Scheme, r.Model, rate,
				fmt.Sprintf("%d", r.Counters.Bursts), fmt.Sprintf("%d", r.Counters.Injected),
				fmt.Sprintf("%d", r.Counters.CorrectedBursts), fmt.Sprintf("%d", r.Counters.DUEs),
				fmt.Sprintf("%d", r.Counters.SilentCorruptions),
				fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.Poisoned))
		}
		emit("Reliability: fault campaign (chipkill at the burst boundary)", tb)
		if *relOut != "" {
			summary := struct {
				Seed     uint64                   `json:"seed"`
				TotalSDC uint64                   `json:"total_sdc"`
				Cells    []core.ReliabilityResult `json:"cells"`
			}{camp.Seed, core.TotalSDC(results), results}
			enc, err := json.MarshalIndent(summary, "", "  ")
			if err != nil {
				fail(err)
			}
			enc = append(enc, '\n')
			if err := os.WriteFile(*relOut, enc, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "samfig: wrote %s (%d cells)\n", *relOut, len(results))
		}
		if n := core.TotalSDC(results); n != 0 {
			fail(fmt.Errorf("reliability campaign took %d silent data corruptions", n))
		}
	}

	type sweep struct {
		name string
		run  func() (*core.Figure, error)
	}
	sweeps := []sweep{
		{"fig15a", func() (*core.Figure, error) {
			return core.Fig15SelectivitySweep(ctx, core.Arithmetic, 8, *sweepRecords, par("fig15a"))
		}},
		{"fig15b", func() (*core.Figure, error) {
			return core.Fig15SelectivitySweep(ctx, core.Arithmetic, 64, *sweepRecords, par("fig15b"))
		}},
		{"fig15c", func() (*core.Figure, error) {
			return core.Fig15SelectivitySweep(ctx, core.Arithmetic, 128, *sweepRecords, par("fig15c"))
		}},
		{"fig15d", func() (*core.Figure, error) {
			return core.Fig15ProjectivitySweep(ctx, core.Arithmetic, 0.10, *sweepRecords, par("fig15d"))
		}},
		{"fig15e", func() (*core.Figure, error) {
			return core.Fig15ProjectivitySweep(ctx, core.Arithmetic, 0.50, *sweepRecords, par("fig15e"))
		}},
		{"fig15f", func() (*core.Figure, error) {
			return core.Fig15ProjectivitySweep(ctx, core.Arithmetic, 1.00, *sweepRecords, par("fig15f"))
		}},
		{"fig15g", func() (*core.Figure, error) {
			return core.Fig15SelectivitySweep(ctx, core.Aggregate, 8, *sweepRecords, par("fig15g"))
		}},
		{"fig15h", func() (*core.Figure, error) {
			return core.Fig15ProjectivitySweep(ctx, core.Aggregate, 1.00, *sweepRecords, par("fig15h"))
		}},
		{"fig15i", func() (*core.Figure, error) {
			return core.Fig15RecordSizeSweep(ctx, *sweepRecords, par("fig15i"))
		}},
	}
	titles := map[string]string{
		"fig15a": "Fig 15a: arithmetic, speedup vs selectivity (8 fields)",
		"fig15b": "Fig 15b: arithmetic, speedup vs selectivity (64 fields)",
		"fig15c": "Fig 15c: arithmetic, speedup vs selectivity (all fields)",
		"fig15d": "Fig 15d: arithmetic, speedup vs projectivity (10% selected)",
		"fig15e": "Fig 15e: arithmetic, speedup vs projectivity (50% selected)",
		"fig15f": "Fig 15f: arithmetic, speedup vs projectivity (100% selected)",
		"fig15g": "Fig 15g: aggregate, speedup vs selectivity (8 fields)",
		"fig15h": "Fig 15h: aggregate, speedup vs projectivity (100% selected)",
		"fig15i": "Fig 15i: speedup vs record size (100%/100%)",
	}
	ranAny := false
	for _, sw := range sweeps {
		if wants(sw.name) || (*exp == "fig15" && strings.HasPrefix(sw.name, "fig15")) {
			fig, err := sw.run()
			if err != nil {
				fail(err)
			}
			emit(titles[sw.name], fig.Table())
			ranAny = true
		}
	}
	known := map[string]bool{
		"all": true, "table1": true, "table2": true, "table3": true,
		"fig12": true, "fig13": true, "fig14a": true, "fig14b": true, "fig14c": true, "fig15": true,
		"reliability": true,
	}
	for _, sw := range sweeps {
		known[sw.name] = true
	}
	if !known[*exp] && !ranAny {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fail(err)
		}
		for _, figID := range collectedOrder {
			enc, err := json.MarshalIndent(collected[figID], "", "  ")
			if err != nil {
				fail(err)
			}
			enc = append(enc, '\n')
			path := filepath.Join(*metricsDir, figID+".json")
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "samfig: wrote %s (%d runs)\n", path, len(collected[figID].Entries))
		}
		// The memo instruments land in their own file, not the per-figure
		// dumps — those stay byte-identical with the cache on or off.
		if cache != nil {
			dump := struct {
				Schema   string          `json:"schema"`
				Counters memo.Counters   `json:"counters"`
				Stats    *stats.Snapshot `json:"stats"`
			}{memo.SchemaVersion, cache.Counters(), cache.StatsSnapshot()}
			enc, err := json.MarshalIndent(dump, "", "  ")
			if err != nil {
				fail(err)
			}
			enc = append(enc, '\n')
			path := filepath.Join(*metricsDir, "memo.json")
			if err := os.WriteFile(path, enc, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "samfig: wrote %s\n", path)
		}
	}
	if cache != nil {
		fmt.Fprintf(os.Stderr, "samfig: memo: %v\n", cache.Counters())
	}
}

// runTraced runs one benchmark query on the baseline and on the chosen
// design with cycle-accurate event tracing attached, and writes both
// timelines into a single Chrome/Perfetto JSON (each design becomes its own
// process group) — the side-by-side view the tracing docs walk through.
func runTraced(w core.Workload, designName, benchName, out string, window int64, limit int) error {
	var q core.BenchQuery
	found := false
	for _, b := range core.Benchmark() {
		if b.Name == benchName {
			q, found = b, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown benchmark query %q", benchName)
	}
	var kind design.Kind
	found = false
	for _, k := range append([]design.Kind{design.Baseline, design.Ideal}, design.AllEvaluated()...) {
		if k.String() == designName {
			kind, found = k, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown design %q", designName)
	}
	kinds := []design.Kind{design.Baseline}
	if kind != design.Baseline {
		kinds = append(kinds, kind)
	}
	var bufs []*etrace.Buffer
	var sps []*etrace.Sampler
	for _, k := range kinds {
		colStore := k == design.Ideal && q.Class == core.ClassQ
		s := core.NewSystem(k, design.Options{}, w, colStore)
		buf := etrace.NewBuffer(limit)
		buf.Name = k.String()
		sp := etrace.NewSampler(window)
		sp.Name = k.String()
		s.AttachEventTrace(buf, sp)
		r, err := core.RunOn(s, q)
		if err != nil {
			return fmt.Errorf("%v: %w", k, err)
		}
		fmt.Printf("%-10s %s: %d cycles, %d events (%d dropped), %d samples\n",
			k, q.Name, r.Stats.Cycles, buf.Len(), buf.Dropped(), len(sp.Samples))
		bufs = append(bufs, buf)
		sps = append(sps, sp)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := etrace.WriteChrome(f, bufs, sps); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("event trace -> %s\n", out)
	return nil
}
