// Command samd is the simulation-as-a-service daemon: it accepts
// simulation, sweep, and reliability-campaign jobs over HTTP/JSON from
// many concurrent clients and multiplexes them onto one bounded worker
// pool with per-tenant quotas, priority classes, and content-addressed
// dedup — an identical design × config × seed submitted by any number of
// tenants runs exactly once, and results are byte-identical to the batch
// CLIs (samfig, samsim) for any client count and arrival order.
//
//	samd -listen 127.0.0.1:8315 -workers 4 &
//	curl -s -X POST localhost:8315/jobs -d '{"kind":"figure","tenant":"ci","figure":{"id":"fig12"}}'
//	curl -s localhost:8315/jobs/j-000001          # poll state / ETA
//	curl -s localhost:8315/jobs/j-000001/result   # the fig12 table
//
// The telemetry plane (/metrics, /progress, /healthz, /debug/pprof) is
// served on the same listener. On SIGTERM/SIGINT the daemon drains:
// submissions get 503, in-flight jobs finish (or are canceled once
// -drain-grace expires), every accepted job reaches a terminal state,
// and the -obs-log event log is closed with its summary record.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sam/internal/serve"
	"sam/internal/sim"
)

func main() {
	fs := flag.NewFlagSet("samd", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8315", "address to serve the job API and telemetry endpoints on")
	workers := fs.Int("workers", 2, "concurrent jobs (scheduler dispatch width)")
	innerWorkers := fs.Int("inner-workers", 0, "worker pool size inside one figure/sweep/reliability job (0 = -workers)")
	queueCap := fs.Int("queue-cap", 256, "max queued jobs before submissions get 503")
	tenantQuota := fs.Int("tenant-quota", 16, "max non-terminal jobs per tenant (0 = unlimited)")
	maxQueueWait := fs.Duration("max-queue-wait", 30*time.Second, "anti-starvation bound: a job queued this long is dispatched before any fresher job of any priority")
	drainGrace := fs.Duration("drain-grace", time.Minute, "how long a SIGTERM drain lets in-flight jobs finish before canceling them")
	cacheDir := fs.String("cache-dir", "", "persistent run-result cache directory (share a samfig -cache-dir to start warm)")
	memoEntries := fs.Int("memo-entries", 0, "in-memory run-result cache entries (0 = default)")
	obsLog := fs.String("obs-log", "", "append the structured JSONL run-lifecycle event log to this file")
	_ = fs.Parse(os.Args[1:])

	cfg := serve.Config{
		Workers:      *workers,
		InnerWorkers: *innerWorkers,
		QueueCap:     *queueCap,
		TenantQuota:  *tenantQuota,
		MaxQueueWait: *maxQueueWait,
		MemoEntries:  *memoEntries,
		CacheDir:     *cacheDir,
	}
	var logFile *os.File
	if *obsLog != "" {
		f, err := os.Create(*obsLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "samd: event log: %v\n", err)
			os.Exit(1)
		}
		logFile = f
		cfg.EventLog = f
	}

	d := serve.NewDaemon(cfg)
	d.AddSource(sim.ShardObsSnapshot)
	sim.SetDomainPulse(d.Tracker().DomainPulse)
	stopWatch := d.Tracker().Watch(2 * time.Second)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "samd: serving job API + telemetry on http://%s (workers=%d)\n",
		ln.Addr(), *workers)

	// Wait for SIGTERM/SIGINT, then drain: the listener stays up so
	// clients can keep polling and fetching results while in-flight work
	// completes; only new submissions are refused.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	fmt.Fprintf(os.Stderr, "samd: draining (grace %s)\n", *drainGrace)

	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	drainErr := d.Drain(graceCtx)
	cancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shutCtx)
	cancel()
	stopWatch()
	sim.SetDomainPulse(nil)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "samd: event log: %v\n", drainErr)
	}
	if logFile != nil {
		if err := logFile.Close(); err != nil && drainErr == nil {
			drainErr = err
			fmt.Fprintf(os.Stderr, "samd: event log: %v\n", err)
		}
	}
	if drainErr != nil {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "samd: drained cleanly")
}
