#!/usr/bin/env bash
# alloccheck.sh — the allocation-regression gate. Two layers:
#
#  1. The exact-zero pins: every *ZeroAllocs* test (internal/ecc codec
#     Into paths, internal/mc fault-enabled and traced service loops,
#     internal/runner's nil-observer sweep fast path) asserts flat
#     steady-state allocation via testing.AllocsPerRun.
#  2. The budget file (scripts/alloc_budget.txt): end-to-end benchmarks
#     whose allocs/op must stay under a committed ceiling. These cover
#     the per-run construction cost the pins deliberately exclude.
#
# Exits non-zero if any pin fails or any benchmark exceeds its budget.
# CI runs this as the alloc-smoke job; run it locally before touching
# the data plane (see EXPERIMENTS.md, "Steady-state allocation budget").
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${1:-scripts/alloc_budget.txt}"

echo "== zero-allocation pins =="
go test -run 'ZeroAllocs' -count=1 ./internal/ecc ./internal/mc ./internal/runner

echo "== allocation budgets ($BUDGET) =="
fail=0
while read -r name pkg budget; do
    case "$name" in ''|\#*) continue ;; esac
    out="$(go test -run '^$' -bench "^${name}\$" -benchmem -benchtime 1x "$pkg")"
    printf '%s\n' "$out"
    # allocs/op is the last value/unit pair on the result line; tolerate the
    # name/results split (see bench.sh) by keying on the unit, not the name.
    allocs="$(printf '%s\n' "$out" | awk '$NF == "allocs/op" {print $(NF-1); exit}')"
    if [ -z "$allocs" ]; then
        echo "FAIL: $name in $pkg produced no allocs/op line" >&2
        fail=1
    elif [ "$allocs" -gt "$budget" ]; then
        echo "FAIL: $name: $allocs allocs/op exceeds budget $budget" >&2
        fail=1
    else
        echo "ok: $name: $allocs allocs/op within budget $budget"
    fi
done < "$BUDGET"
exit "$fail"
