#!/usr/bin/env bash
# obssmoke.sh — end-to-end check of the live observability plane. Runs a
# small fig12 sweep with -obs-listen/-obs-log, scrapes /metrics and
# /progress from the live process mid-run, then validates the JSONL
# run-lifecycle event log the run leaves behind. CI runs this as the
# obs-smoke job and uploads the event log as an artifact; run it locally
# after touching internal/obs or the runner instrumentation hooks.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${OBS_PORT:-9915}"
LOG="${1:-obs-events.jsonl}"

go build -o samfig ./cmd/samfig
go build -o obscheck ./scripts/obscheck

# Serial workers stretch the small sweep to ~5s — a comfortable window
# for the mid-run scrape without slowing CI meaningfully.
./samfig -exp fig12 -small -workers 1 -obs-listen "$ADDR" -obs-log "$LOG" \
    > fig12-obs.txt 2> samfig-obs.err &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

echo "== wait for the plane to come up =="
./obscheck -wait "http://$ADDR/healthz" -wait-timeout 30s

echo "== mid-run scrape =="
./obscheck \
    -metrics "http://$ADDR/metrics" \
    -require sam_obs_jobs_enqueued_total,sam_obs_job_run_ns,sam_obs_job_queue_ns,sam_obs_jobs_inflight \
    -progress "http://$ADDR/progress"

wait "$PID"
trap - EXIT
sed -n '1,5p' samfig-obs.err

echo "== event log =="
./obscheck -log "$LOG"

# The observed run must still produce the figure (obs is one-way).
test -s fig12-obs.txt || { echo "FAIL: observed run produced no figure" >&2; exit 1; }
echo "obs smoke OK ($LOG)"
