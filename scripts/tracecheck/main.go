// Command tracecheck validates a Chrome trace-event JSON file against the
// invariants the etrace exporter guarantees (known phases, named
// non-overlapping slices in time order per track, balanced async spans,
// counters with values) and prints a one-line summary. The CI trace-smoke
// job runs it on a samsim -trace-out artifact.
//
// Usage:
//
//	go run ./scripts/tracecheck trace.json
package main

import (
	"fmt"
	"os"

	"sam/internal/etrace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	sum, err := etrace.ValidateChrome(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: INVALID: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("%s: OK: %s\n", os.Args[1], sum)
}
