#!/usr/bin/env bash
# bench.sh — run the repo's Benchmark* suites with -benchmem and emit a
# machine-readable baseline, BENCH_<date>.json by default (override with a
# filename argument). Each entry records the benchmark name, iteration
# count, ns/op, B/op, allocs/op, and any custom metrics reported via
# b.ReportMetric (e.g. sim-requests, speedup).
#
# The microbenchmarks (internal/mc, internal/ecc) run at a real benchtime
# for stable ns/op; the root figure/sweep suite runs one iteration per
# benchmark because each iteration is a full simulation.
#
# Compare two baselines with benchstat, or diff the JSON directly — see
# EXPERIMENTS.md ("Performance methodology").
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="${BENCH_DATE:-$(date +%F)}"
OUT="${1:-BENCH_${DATE}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "${MICRO_BENCHTIME:-1s}" \
    ./internal/mc ./internal/ecc ./internal/etrace | tee "$RAW"
go test -run '^$' -bench . -benchmem -benchtime 1x . | tee -a "$RAW"
# The serial-vs-parallel contrast and the serial-vs-sharded engine
# contrast are ratios of two wall-clock times, and at one iteration each
# the ratio is mostly noise (the 1x run above leaves a large heap behind,
# too). Re-run the pairs in a fresh process at a real iteration count; the
# parser keeps the later, better-sampled entries. The multi-channel
# scaling benchmark rides along: its ns/op is the headline the sharded
# engine is measured against, so it also deserves real sampling.
go test -run '^$' -bench 'Parallelism|MultiChannelSharded|ExtensionMultiChannel' \
    -benchmem -benchtime "${PAR_BENCHTIME:-5x}" . | tee -a "$RAW"
# The headline figure benchmarks deserve real sampling too: at 1x their
# ns/op carries the whole warm-up (table generation, first-touch paging).
# Re-run them at a fixed small iteration count; the parser keeps these
# later, better-sampled entries in place of the 1x ones.
go test -run '^$' -bench '^BenchmarkFig12' \
    -benchmem -benchtime "${FIG_BENCHTIME:-3x}" . | tee -a "$RAW"

# go test bench lines are "BenchmarkName-P  iters  value unit  value unit ...";
# fold the value/unit pairs into JSON keys (ns/op -> ns_per_op, custom
# metric units keep their name with non-alphanumerics mapped to _).
#
# go test prints the benchmark name before running it and the results after,
# so anything written to stdout in between (or an interrupted run) leaves the
# name on a line of its own and the results on the next. That split hit
# subtest-named benchmarks reporting custom metrics and silently dropped
# them from the JSON (worse: a trailing bare name emitted "iterations":}
# — invalid JSON). Buffer a name-only line and rejoin it with its results
# line; a name whose results never arrive is reported on stderr, not
# half-emitted.
awk -v date="$DATE" -v goversion="$(go env GOVERSION)" '
/^Benchmark/ && NF == 1 { pending = $1; next }
pending != "" {
    if ($1 ~ /^[0-9]+$/) { $0 = pending "\t" $0 }
    else printf "bench.sh: dropping %s: no results line\n", pending > "/dev/stderr"
    pending = ""
}
/^Benchmark/ && $2 ~ /^[0-9]+$/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("{\"name\":\"%s\",\"iterations\":%s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op") key = "ns_per_op"
        else if (unit == "B/op") key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else { key = unit; gsub(/[^A-Za-z0-9]/, "_", key) }
        line = line sprintf(",\"%s\":%s", key, val)
    }
    # A name measured twice (the Parallelism re-run) keeps its later,
    # better-sampled entry in its original position.
    if (name in idx) out[idx[name]] = line "}"
    else { idx[name] = n; out[n++] = line "}" }
}
END {
    if (pending != "")
        printf "bench.sh: dropping %s: no results line\n", pending > "/dev/stderr"
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, goversion
    for (i = 0; i < n; i++) printf "    %s%s\n", out[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"
echo "wrote $OUT"
