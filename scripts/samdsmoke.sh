#!/usr/bin/env bash
# samdsmoke.sh — end-to-end check of the samd simulation service. Starts
# the daemon, submits the same fig12 job from two parallel HTTP clients,
# polls both to completion, and asserts (1) both clients got byte-identical
# results, (2) the result is byte-identical to what `samfig -exp fig12
# -small` prints (minus its banner line), (3) the dedup was observable —
# the grid simulated once, the second job attributed "dedup" or "hit" —
# and (4) a SIGTERM drain exits cleanly leaving an event log that
# obscheck accepts. CI runs this as the samd-smoke job; run it locally
# after touching internal/serve or cmd/samd.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SAMD_PORT:-8315}"
BASE="http://$ADDR"
LOG="${1:-samd-events.jsonl}"

go build -o samd ./cmd/samd
go build -o samfig ./cmd/samfig
go build -o obscheck ./scripts/obscheck

./samd -listen "$ADDR" -workers 2 -obs-log "$LOG" 2> samd.err &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

echo "== wait for the daemon to come up =="
./obscheck -wait "$BASE/healthz" -wait-timeout 30s

echo "== two parallel clients submit the same fig12 job =="
submit() {
    curl -sf -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
        -d '{"kind":"figure","tenant":"'"$1"'","workload":{"small":true},"figure":{"id":"fig12"}}'
}
submit client-a > sub-a.json & SUB_A=$!
submit client-b > sub-b.json & SUB_B=$!
wait "$SUB_A" "$SUB_B"

JOB_A=$(python3 -c 'import json,sys; print(json.load(open("sub-a.json"))["job"]["id"])')
JOB_B=$(python3 -c 'import json,sys; print(json.load(open("sub-b.json"))["job"]["id"])')
echo "client-a -> $JOB_A, client-b -> $JOB_B"

echo "== poll both jobs to completion =="
poll() {
    python3 - "$BASE" "$1" <<'EOF'
import json, sys, time, urllib.request
base, job = sys.argv[1], sys.argv[2]
deadline = time.time() + 300
while time.time() < deadline:
    st = json.load(urllib.request.urlopen(f"{base}/jobs/{job}"))
    if st["state"] in ("done", "failed", "canceled"):
        assert st["state"] == "done", f"{job}: {st['state']}: {st.get('err','')}"
        print(f"{job}: done (memo={st.get('memo','')}, dedup_of={st.get('dedup_of','')})")
        sys.exit(0)
    time.sleep(0.5)
sys.exit(f"{job}: still {st['state']} after 300s")
EOF
}
poll "$JOB_A"
poll "$JOB_B"

echo "== daemon stayed healthy and exported both cache tiers =="
./obscheck \
    -metrics "$BASE/metrics" \
    -require sam_obs_jobs_enqueued_total,sam_obs_jobs_finished_total,sam_obs_job_run_ns,sam_memo_misses_total,sam_samd_results_misses_total \
    -progress "$BASE/progress"
curl -sf "$BASE/healthz" > /dev/null

echo "== identical submissions ran once =="
curl -sf "$BASE/jobs" > jobs.json
python3 - <<'EOF'
import json
jobs = json.load(open("jobs.json"))["jobs"]
assert len(jobs) == 2, f"expected 2 jobs, saw {len(jobs)}"
assert all(j["state"] == "done" for j in jobs), jobs
memos = sorted(j.get("memo", "") for j in jobs)
assert memos[1] == "miss" and memos[0] in ("dedup", "hit"), \
    f"expected one computed job and one deduplicated job, got {memos}"
print(f"dedup observable: memos={memos}")
EOF

echo "== both clients see byte-identical results, matching samfig =="
curl -sf "$BASE/jobs/$JOB_A/result" > fig12-a.txt
curl -sf "$BASE/jobs/$JOB_B/result" > fig12-b.txt
cmp fig12-a.txt fig12-b.txt
./samfig -exp fig12 -small > fig12-cli.txt
# samfig wraps the table in a banner line and a trailing blank line; the
# daemon serves the bare table.
sed '1d;$d' fig12-cli.txt > fig12-cli-table.txt
cmp fig12-a.txt fig12-cli-table.txt

echo "== SIGTERM drain =="
kill -TERM "$PID"
wait "$PID"
trap - EXIT
sed -n '1,5p' samd.err

echo "== event log =="
./obscheck -log "$LOG"
echo "samd smoke OK ($LOG)"
