// Command obscheck validates the observability plane's three outputs —
// the /metrics Prometheus exposition, the /progress JSON document, and
// the JSONL run-lifecycle event log — against the invariants internal/obs
// guarantees. Sources may be URLs (scraped live) or files (saved
// artifacts); the CI obs-smoke job uses both, scraping a running samfig
// mid-sweep and then validating the event log it left behind.
//
// Usage:
//
//	go run ./scripts/obscheck -wait http://127.0.0.1:9915/healthz \
//	    -metrics http://127.0.0.1:9915/metrics -require sam_obs_jobs_enqueued_total
//	go run ./scripts/obscheck -progress progress.json -complete -log obs-events.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sam/internal/obs"
)

func main() {
	wait := flag.String("wait", "", "poll this URL until it answers 200 before validating")
	waitTimeout := flag.Duration("wait-timeout", 30*time.Second, "give up polling -wait after this long")
	metrics := flag.String("metrics", "", "validate a Prometheus exposition from this URL or file")
	require := flag.String("require", "", "comma-separated families that must appear in -metrics")
	progress := flag.String("progress", "", "validate a /progress JSON document from this URL or file")
	complete := flag.Bool("complete", false, "with -progress: require every sweep fully done")
	logPath := flag.String("log", "", "validate a JSONL run-lifecycle event log file")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
		os.Exit(1)
	}
	if *wait == "" && *metrics == "" && *progress == "" && *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *wait != "" {
		deadline := time.Now().Add(*waitTimeout)
		for {
			resp, err := http.Get(*wait)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					fmt.Printf("obscheck: %s answered 200\n", *wait)
					break
				}
			}
			if time.Now().After(deadline) {
				fail("%s not healthy within %s (last: %v)", *wait, *waitTimeout, err)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	if *metrics != "" {
		body, err := fetch(*metrics)
		if err != nil {
			fail("metrics: %v", err)
		}
		n, err := checkExposition(body, splitList(*require))
		if err != nil {
			fail("metrics: %s: %v", *metrics, err)
		}
		fmt.Printf("obscheck: %s: OK: %d families\n", *metrics, n)
	}
	if *progress != "" {
		body, err := fetch(*progress)
		if err != nil {
			fail("progress: %v", err)
		}
		rep, err := checkProgress(body, *complete)
		if err != nil {
			fail("progress: %s: %v", *progress, err)
		}
		fmt.Printf("obscheck: %s: OK: %d sweeps, %d workers\n", *progress, len(rep.Sweeps), rep.Workers)
	}
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fail("log: %v", err)
		}
		n, err := checkEventLog(f)
		f.Close()
		if err != nil {
			fail("log: %s: %v", *logPath, err)
		}
		fmt.Printf("obscheck: %s: OK: %d events\n", *logPath, n)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// fetch reads a URL (http/https) or a file path.
func fetch(src string) ([]byte, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %s", resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(src)
}

// checkExposition validates Prometheus text-format invariants: HELP
// before TYPE before samples, every sample inside an announced family,
// parseable values, cumulative histogram buckets with +Inf == _count,
// and the presence of each required family. Returns the family count.
func checkExposition(body []byte, required []string) (int, error) {
	type family struct {
		typ     string
		samples int
	}
	families := map[string]*family{}
	lastBucket := map[string]uint64{}
	infBucket := map[string]uint64{}
	countVal := map[string]uint64{}
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case line == "":
			return 0, fmt.Errorf("line %d: blank line in exposition", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if families[name] != nil {
				return 0, fmt.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			families[name] = &family{}
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) < 4 {
				return 0, fmt.Errorf("line %d: malformed TYPE", ln+1)
			}
			fam := families[f[2]]
			if fam == nil {
				return 0, fmt.Errorf("line %d: TYPE before HELP for %s", ln+1, f[2])
			}
			fam.typ = f[3]
		default:
			cut := strings.IndexAny(line, "{ ")
			if cut <= 0 {
				return 0, fmt.Errorf("line %d: malformed sample %q", ln+1, line)
			}
			name := line[:cut]
			valStr := line[strings.LastIndexByte(line, ' ')+1:]
			if _, err := strconv.ParseFloat(valStr, 64); err != nil {
				return 0, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(name, suf); ok && families[b] != nil && families[b].typ == "histogram" {
					base = b
					break
				}
			}
			fam := families[base]
			if fam == nil || fam.typ == "" {
				return 0, fmt.Errorf("line %d: sample %q outside any announced family", ln+1, name)
			}
			fam.samples++
			if fam.typ == "histogram" {
				v, _ := strconv.ParseUint(valStr, 10, 64)
				switch {
				case strings.HasSuffix(name, "_bucket"):
					if v < lastBucket[base] {
						return 0, fmt.Errorf("line %d: non-cumulative bucket for %s (%d < %d)", ln+1, base, v, lastBucket[base])
					}
					lastBucket[base] = v
					if strings.Contains(line, `le="+Inf"`) {
						infBucket[base] = v
					}
				case strings.HasSuffix(name, "_count"):
					countVal[base] = v
				}
			}
		}
	}
	for base, inf := range infBucket {
		if countVal[base] != inf {
			return 0, fmt.Errorf("%s: +Inf bucket %d != _count %d", base, inf, countVal[base])
		}
	}
	for name, fam := range families {
		if fam.typ == "" {
			return 0, fmt.Errorf("%s: HELP without TYPE", name)
		}
		if fam.samples == 0 {
			return 0, fmt.Errorf("%s: family with no samples", name)
		}
	}
	for _, want := range required {
		if families[want] == nil {
			return 0, fmt.Errorf("required family %s missing", want)
		}
	}
	return len(families), nil
}

// checkProgress validates the /progress document: consistent per-sweep
// arithmetic, and (with complete) every sweep finished.
func checkProgress(body []byte, complete bool) (*obs.Report, error) {
	var rep obs.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, err
	}
	for _, sw := range rep.Sweeps {
		if sw.Queued+sw.Running+sw.Done != sw.Total {
			return nil, fmt.Errorf("sweep %s: queued %d + running %d + done %d != total %d",
				sw.Sweep, sw.Queued, sw.Running, sw.Done, sw.Total)
		}
		if complete && (sw.Done != sw.Total || sw.Running != 0) {
			return nil, fmt.Errorf("sweep %s incomplete: %d/%d done, %d running",
				sw.Sweep, sw.Done, sw.Total, sw.Running)
		}
	}
	if complete && len(rep.Sweeps) == 0 {
		return nil, fmt.Errorf("no sweeps in a supposedly complete report")
	}
	return &rep, nil
}

// checkEventLog validates the JSONL lifecycle stream: every start is
// matched by exactly one finish/fail, timestamps are monotonically
// non-decreasing, and the log closes with a summary whose per-sweep
// tallies match the events above it. Returns the event count.
func checkEventLog(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type jobKey struct {
		sweep string
		job   int
	}
	open := map[jobKey]bool{}
	done := map[string]int{}
	failed := map[string]int{}
	enqueued := map[string]int{}
	var summary *obs.SummaryEvent
	var lastT int64
	n := 0
	for sc.Scan() {
		n++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return 0, fmt.Errorf("event %d: %v", n, err)
		}
		if e.T < lastT {
			return 0, fmt.Errorf("event %d: timestamp went backwards (%d < %d)", n, e.T, lastT)
		}
		lastT = e.T
		if summary != nil {
			return 0, fmt.Errorf("event %d: events after the summary", n)
		}
		k := jobKey{e.Sweep, e.Job}
		switch e.Ev {
		case "enqueue":
			enqueued[e.Sweep] += e.Jobs
		case "start":
			if open[k] {
				return 0, fmt.Errorf("event %d: job %s/%d started twice", n, e.Sweep, e.Job)
			}
			open[k] = true
		case "finish", "fail":
			if !open[k] {
				return 0, fmt.Errorf("event %d: job %s/%d %sed without starting", n, e.Sweep, e.Job, e.Ev)
			}
			delete(open, k)
			if e.RunNS < 0 || e.QueueNS < 0 {
				return 0, fmt.Errorf("event %d: negative duration", n)
			}
			done[e.Sweep]++
			if e.Ev == "fail" {
				failed[e.Sweep]++
			}
		case "annotate", "stall":
			// free-form; nothing to cross-check
		case "summary":
			summary = e.Summary
		default:
			return 0, fmt.Errorf("event %d: unknown event type %q", n, e.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if len(open) != 0 {
		return 0, fmt.Errorf("%d jobs started but never finished", len(open))
	}
	if summary == nil {
		return 0, fmt.Errorf("log has no summary event")
	}
	for _, sw := range summary.Sweeps {
		if sw.Done != done[sw.Sweep] || sw.Failed != failed[sw.Sweep] {
			return 0, fmt.Errorf("summary for %s (done %d failed %d) disagrees with events (done %d failed %d)",
				sw.Sweep, sw.Done, sw.Failed, done[sw.Sweep], failed[sw.Sweep])
		}
		if got := enqueued[sw.Sweep]; got != sw.Jobs {
			return 0, fmt.Errorf("summary for %s: %d jobs, events enqueued %d", sw.Sweep, sw.Jobs, got)
		}
	}
	return n, nil
}
