// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6) at bench scale. Each benchmark reports the relevant headline
// number as a custom metric (speedup, gmean, overhead) in addition to
// wall-clock cost, so `go test -bench` doubles as a results harness.
package sam_test

import (
	"context"
	"fmt"
	"testing"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/dram"
	"sam/internal/etrace"
	"sam/internal/imdb"
	"sam/internal/mc"
	"sam/internal/sim"
	"sam/internal/stats"
)

// benchWorkload keeps bench iterations in the tens of milliseconds.
func benchWorkload() core.Workload {
	return core.Workload{TaRecords: 1 << 10, TbRecords: 8 << 10, Seed: 0xBE7C4}
}

// BenchmarkTable1Matrix regenerates the qualitative comparison (Table 1).
func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Parameters regenerates the system parameter dump (Table 2).
func BenchmarkTable2Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Planning parses and plans the whole benchmark query set
// (Table 3).
func BenchmarkTable3Planning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuerySpeedup runs one benchmark query on one design and reports the
// speedup over the row-store baseline.
func benchQuerySpeedup(b *testing.B, kind design.Kind, queryName string) {
	var q core.BenchQuery
	for _, c := range core.Benchmark() {
		if c.Name == queryName {
			q = c
		}
	}
	w := benchWorkload()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rs, err := core.RunComparison(context.Background(), []design.Kind{kind}, design.Options{}, w, q, core.Par{})
		if err != nil {
			b.Fatal(err)
		}
		speedup = rs[0].Speedup
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkFig12 covers the headline per-query speedups: a representative
// column-preferring scan (Q3), update (Q11), and row-preferring scan (Qs2)
// for each evaluated design.
func BenchmarkFig12(b *testing.B) {
	for _, kind := range design.AllEvaluated() {
		for _, qn := range []string{"Q3", "Q11", "Qs2"} {
			b.Run(fmt.Sprintf("%s/%s", kind, qn), func(b *testing.B) {
				benchQuerySpeedup(b, kind, qn)
			})
		}
	}
}

// BenchmarkFig12GmeanQ reproduces the Q-query geometric means per design.
func BenchmarkFig12GmeanQ(b *testing.B) {
	w := benchWorkload()
	for _, kind := range []design.Kind{design.SAMEn, design.SAMIO, design.SAMSub, design.GSDRAMecc, design.RCNVMWd} {
		b.Run(kind.String(), func(b *testing.B) {
			var gmean float64
			for i := 0; i < b.N; i++ {
				var sp []float64
				for _, q := range core.Benchmark() {
					if q.Class != core.ClassQ {
						continue
					}
					rs, err := core.RunComparison(context.Background(), []design.Kind{kind}, design.Options{}, w, q, core.Par{})
					if err != nil {
						b.Fatal(err)
					}
					sp = append(sp, rs[0].Speedup)
				}
				gmean = stats.Gmean(sp)
			}
			b.ReportMetric(gmean, "gmean-speedup")
		})
	}
}

// BenchmarkFig13Power reproduces the power/energy study for the read-Q
// category on the designs Fig. 13 contrasts hardest: baseline vs SAM-IO vs
// SAM-en.
func BenchmarkFig13Power(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2] // Q3
	for _, kind := range []design.Kind{design.Baseline, design.SAMIO, design.SAMEn, design.RCNVMWd} {
		b.Run(kind.String(), func(b *testing.B) {
			var mw, eff float64
			base, err := core.RunOne(design.Baseline, design.Options{}, w, q)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				r, err := core.RunOne(kind, design.Options{}, w, q)
				if err != nil {
					b.Fatal(err)
				}
				mw = r.Stats.PowerMW.Total()
				eff = sim.EnergyEfficiency(base.Stats, r.Stats)
			}
			b.ReportMetric(mw, "mW")
			b.ReportMetric(eff, "energy-eff")
		})
	}
}

// BenchmarkFig14aSubstrate reproduces the substrate swap for SAM-en and
// RC-NVM-wd on both technologies (Q3 as the probe query).
func BenchmarkFig14aSubstrate(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	for _, kind := range []design.Kind{design.SAMEn, design.RCNVMWd} {
		for _, sub := range []design.Substrate{design.DRAM, design.NVM} {
			b.Run(fmt.Sprintf("%s/%s", kind, sub), func(b *testing.B) {
				var speedup float64
				base, err := core.RunOne(design.Baseline, design.Options{}, w, q)
				if err != nil {
					b.Fatal(err)
				}
				opts := design.Options{Substrate: sub, SubstrateSet: true}
				for i := 0; i < b.N; i++ {
					r, err := core.RunOne(kind, opts, w, q)
					if err != nil {
						b.Fatal(err)
					}
					speedup = sim.Speedup(base.Stats, r.Stats)
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

// BenchmarkFig14bGranularity reproduces the 16/8/4-bit granularity sweep
// for SAM-en.
func BenchmarkFig14bGranularity(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	for _, g := range []design.Granularity{design.Gran16, design.Gran8, design.Gran4} {
		b.Run(fmt.Sprintf("%d-bit", g.BitsPerChip), func(b *testing.B) {
			var speedup float64
			base, err := core.RunOne(design.Baseline, design.Options{}, w, q)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				r, err := core.RunOne(design.SAMEn, design.Options{Gran: g}, w, q)
				if err != nil {
					b.Fatal(err)
				}
				speedup = sim.Speedup(base.Stats, r.Stats)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkFig14cArea regenerates the analytical area model.
func BenchmarkFig14cArea(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		fig := core.Fig14c()
		var ok bool
		v, ok = fig.Value("area", "SAM-sub")
		if !ok {
			b.Fatal("missing cell")
		}
	}
	b.ReportMetric(v, "sam-sub-area")
}

// BenchmarkFig15ArithSelectivity reproduces one selectivity sweep point per
// end of the axis (panels a-c).
func BenchmarkFig15ArithSelectivity(b *testing.B) {
	for _, sel := range []float64{0.10, 1.0} {
		b.Run(fmt.Sprintf("sel%.0f%%", sel*100), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{Query: core.Arithmetic, Selectivity: sel, Projected: 8}, 512, core.Par{})
				if err != nil {
					b.Fatal(err)
				}
				v = vals["SAM-en"]
			}
			b.ReportMetric(v, "sam-en-speedup")
		})
	}
}

// BenchmarkFig15ArithProjectivity reproduces the projectivity axis (panels
// d-f) at its ends.
func BenchmarkFig15ArithProjectivity(b *testing.B) {
	for _, proj := range []int{2, 64} {
		b.Run(fmt.Sprintf("proj%d", proj), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{Query: core.Arithmetic, Selectivity: 0.5, Projected: proj}, 512, core.Par{})
				if err != nil {
					b.Fatal(err)
				}
				v = vals["SAM-en"]
			}
			b.ReportMetric(v, "sam-en-speedup")
		})
	}
}

// BenchmarkFig15Aggregate reproduces the aggregate-query panels (g, h).
func BenchmarkFig15Aggregate(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{Query: core.Aggregate, Selectivity: 0.5, Projected: 8}, 512, core.Par{})
		if err != nil {
			b.Fatal(err)
		}
		v = vals["RC-NVM-wd"]
	}
	b.ReportMetric(v, "rc-nvm-wd-speedup")
}

// BenchmarkFig15RecordSize reproduces panel (i) at both ends of the record
// size axis.
func BenchmarkFig15RecordSize(b *testing.B) {
	for _, rb := range []int{64, 1024} {
		b.Run(fmt.Sprintf("%dB", rb), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				fields := rb / imdb.FieldBytes
				vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{Query: core.Arithmetic, Selectivity: 1, Projected: fields, RecordBytes: rb}, 512, core.Par{})
				if err != nil {
					b.Fatal(err)
				}
				v = vals["RC-NVM-wd"]
			}
			b.ReportMetric(v, "rc-nvm-wd-speedup")
		})
	}
}

// BenchmarkAblationModeSwitch quantifies the tRTR mode-switch cost the
// paper argues is negligible (Section 5.3): SAM-en with the default 2-cycle
// switch vs an 8-cycle switch.
func BenchmarkAblationModeSwitch(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[0] // Q1: three different lanes -> some switching
	for _, trtr := range []int{2, 8} {
		b.Run(fmt.Sprintf("tRTR%d", trtr), func(b *testing.B) {
			var speedup float64
			base, err := core.RunOne(design.Baseline, design.Options{}, w, q)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				d := design.New(design.SAMEn, design.Options{})
				d.Mem.Timing.TRTR = trtr
				s := sim.NewSystem(d)
				s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
				s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
				r, err := s.RunQuery(q.SQL, q.Params)
				if err != nil {
					b.Fatal(err)
				}
				speedup = sim.Speedup(base.Stats, r.Stats)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkAblationWriteQueue sweeps the write-drain watermarks on the
// update workload (Q11), an MC design choice DESIGN.md calls out.
func BenchmarkAblationWriteQueue(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[10] // Q11
	for _, high := range []int{8, 24} {
		b.Run(fmt.Sprintf("drainHigh%d", high), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				d := design.New(design.SAMEn, design.Options{})
				s := sim.NewSystem(d)
				dev := dram.NewDevice(d.Mem)
				cfg := mc.DefaultConfig()
				cfg.WriteDrainHigh = high
				cfg.WriteDrainLow = high / 4
				s.Device = dev
				s.Controller = mc.NewController(dev, cfg)
				s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
				s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
				r, err := s.RunQuery(q.SQL, q.Params)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Stats.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// memory requests per wall-second for a Q3 scan on SAM-en.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	b.ReportAllocs()
	var reqs uint64
	for i := 0; i < b.N; i++ {
		r, err := core.RunOne(design.SAMEn, design.Options{}, w, q)
		if err != nil {
			b.Fatal(err)
		}
		reqs = r.Stats.MemRequests
	}
	b.ReportMetric(float64(reqs), "sim-requests")
}

// BenchmarkSimulatorThroughputFaulted is BenchmarkSimulatorThroughput with
// the fault plane live: every data burst pays chipkill encode, transient
// injection, and decode. The ratio to the fault-free ns/op is the cost of
// fault injection — the zero-alloc codec work keeps it within ~2x.
func BenchmarkSimulatorThroughputFaulted(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	fm := &sim.FaultModel{Seed: 0xF00D, Rate: 0.01}
	b.ReportAllocs()
	var reqs uint64
	for i := 0; i < b.N; i++ {
		r, err := core.RunOneFaulted(design.SAMEn, design.Options{}, w, q, fm)
		if err != nil {
			b.Fatal(err)
		}
		reqs = r.Stats.MemRequests
	}
	b.ReportMetric(float64(reqs), "sim-requests")
}

// BenchmarkAblationInterleave contrasts the paper's columns-low address
// mapping with bank-rotating interleave on the baseline row-store scan —
// the mapping choice that determines how much of SAM's win comes from bank
// parallelism alone.
func BenchmarkAblationInterleave(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2] // Q3
	for _, il := range []mc.Interleave{mc.ColumnsLow, mc.BanksLow} {
		b.Run(il.String(), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				d := design.New(design.Baseline, design.Options{})
				s := sim.NewSystem(d)
				dev := dram.NewDevice(d.Mem)
				cfg := mc.DefaultConfig()
				cfg.Interleave = il
				s.Device = dev
				s.Controller = mc.NewController(dev, cfg)
				s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
				s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
				r, err := s.RunQuery(q.SQL, q.Params)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Stats.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkExtensionDDR5 runs SAM-en's headline query on the DDR5-4800
// extension config (beyond the paper's evaluation).
func BenchmarkExtensionDDR5(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	var speedup float64
	for i := 0; i < b.N; i++ {
		mkSys := func(kind design.Kind) *sim.System {
			d := design.New(kind, design.Options{})
			d.Mem.Timing = dram.DDR5_4800().Timing
			d.Mem.Geometry = dram.DDR5_4800().Geometry
			d.Mem.ClockMHz = dram.DDR5_4800().ClockMHz
			s := sim.NewSystem(d)
			s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
			s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
			return s
		}
		base, err := mkSys(design.Baseline).RunQuery(q.SQL, q.Params)
		if err != nil {
			b.Fatal(err)
		}
		r, err := mkSys(design.SAMEn).RunQuery(q.SQL, q.Params)
		if err != nil {
			b.Fatal(err)
		}
		speedup = sim.Speedup(base.Stats, r.Stats)
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkExtensionMultiChannel scales the channel count (beyond the
// paper's single-channel setup) on the baseline scan — the orthodox way to
// buy strided bandwidth with hardware instead of SAM.
func BenchmarkExtensionMultiChannel(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	for _, channels := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ch%d", channels), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				d := design.New(design.Baseline, design.Options{})
				d.Mem.Geometry.Channels = channels
				s := sim.NewSystem(d)
				s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
				s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
				r, err := s.RunQuery(q.SQL, q.Params)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Stats.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkMultiChannelSharded contrasts the two run engines on the same
// 4-channel baseline scan: serial (ShardWorkers=1, one event loop services
// every channel) versus sharded (one event domain per channel replayed by
// worker goroutines). Both produce bit-identical RunStats — the cycles
// metric must match between the sub-benchmarks; ns/op is the wall-clock
// contrast, which on multi-core hosts shows the sharding win.
func BenchmarkMultiChannelSharded(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				d := design.New(design.Baseline, design.Options{})
				d.Mem.Geometry.Channels = 4
				s := sim.NewSystem(d)
				s.ShardWorkers = mode.workers
				s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
				s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
				r, err := s.RunQuery(q.SQL, q.Params)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Stats.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkSimulatorThroughputSampled is BenchmarkSimulatorThroughput with
// the event ring and windowed sampler attached: every request lifecycle
// and DRAM command is traced and every window boundary snapshots the
// controller. The allocs/op gate in scripts/alloc_budget.txt holds the
// sampled path to per-run construction costs — recordSample must not
// allocate per sample (it reuses the system's scratch DeviceStats).
func BenchmarkSimulatorThroughputSampled(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2]
	b.ReportAllocs()
	var samples int
	for i := 0; i < b.N; i++ {
		d := design.New(design.SAMEn, design.Options{})
		s := sim.NewSystem(d)
		sp := etrace.NewSampler(256)
		s.AttachEventTrace(etrace.NewBuffer(0), sp)
		s.AddTable(imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed), false)
		s.AddTable(imdb.NewTable(imdb.Tb(w.TbRecords), w.Seed+1), false)
		if _, err := s.RunQuery(q.SQL, q.Params); err != nil {
			b.Fatal(err)
		}
		samples = len(sp.Samples)
	}
	b.ReportMetric(float64(samples), "samples")
}

// BenchmarkExtensionHybridStore contrasts three ways to accelerate the same
// field scan: SAM-en hardware on a row store, a software hybrid layout with
// the scanned fields stored columnar (no new hardware, but a fixed layout
// decision), and the plain row store.
func BenchmarkExtensionHybridStore(b *testing.B) {
	w := benchWorkload()
	query := "SELECT SUM(f9) FROM Ta WHERE f10 > 2"
	mk := func(kind design.Kind, hot []int) *sim.System {
		d := design.New(kind, design.Options{})
		s := sim.NewSystem(d)
		t := imdb.NewTable(imdb.Ta(w.TaRecords), w.Seed)
		if hot != nil {
			s.AddTableHybrid(t, hot)
		} else {
			s.AddTable(t, false)
		}
		return s
	}
	cases := []struct {
		name string
		kind design.Kind
		hot  []int
	}{
		{"row-store", design.Baseline, nil},
		{"hybrid", design.Baseline, []int{9, 10}},
		{"SAM-en", design.SAMEn, nil},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				r, err := mk(c.kind, c.hot).RunQuery(query, nil)
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(r.Stats.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkFig15AggregateProjectivity covers panel (h): the aggregate query
// at full selectivity across the projectivity axis ends.
func BenchmarkFig15AggregateProjectivity(b *testing.B) {
	for _, proj := range []int{4, 64} {
		b.Run(fmt.Sprintf("proj%d", proj), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{Query: core.Aggregate, Selectivity: 1.0, Projected: proj}, 512, core.Par{})
				if err != nil {
					b.Fatal(err)
				}
				v = vals["SAM-en"]
			}
			b.ReportMetric(v, "sam-en-speedup")
		})
	}
}

// BenchmarkSweepParallelism contrasts the same Fig. 15 selectivity sweep
// run serially (-workers=1) and on the full worker pool (-workers=0 =
// GOMAXPROCS): the ratio of the two wall-clock times is the speedup the
// runner subsystem buys on an embarrassingly parallel sweep grid.
func BenchmarkSweepParallelism(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			par := core.Par{Workers: bc.workers}
			for i := 0; i < b.N; i++ {
				fig, err := core.Fig15SelectivitySweep(context.Background(), core.Arithmetic, 8, 512, par)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Cells) == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// BenchmarkComparisonParallelism is the same contrast on the Fig. 12 cell
// grid: one query across every evaluated design plus the baseline.
func BenchmarkComparisonParallelism(b *testing.B) {
	w := benchWorkload()
	q := core.Benchmark()[2] // Q3
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			par := core.Par{Workers: bc.workers}
			for i := 0; i < b.N; i++ {
				rs, err := core.RunComparison(context.Background(), design.AllEvaluated(), design.Options{}, w, q, par)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}
