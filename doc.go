// Package sam is a full-system reproduction of "SAM: Accelerating Strided
// Memory Accesses" (Xin, Guo, Zhang, Yang — MICRO 2021): a cycle-level
// DDR4/RRAM memory-system simulator with the paper's three SAM designs
// (SAM-sub, SAM-IO, SAM-en), its baselines (GS-DRAM, GS-DRAM-ecc,
// RC-NVM-bit, RC-NVM-wd), real chipkill ECC codecs, a sector-cache
// hierarchy, and an in-memory-database workload engine that executes the
// paper's Table 3 SQL benchmark.
//
// The public surface lives in internal/core (experiment runners used by the
// cmd/ tools, the examples, and the benches); the substrates are:
//
//	internal/dram    DDR4 command/timing model, common-die I/O buffers,
//	                 stride I/O modes, protocol auditor
//	internal/nvm     crossbar RRAM personality and RC-NVM reshape
//	internal/mc      FR-FCFS controller, address mapping, Fig. 10 remap
//	internal/ecc     SEC-DED, SSC and SSC-DSD chipkill (Reed-Solomon),
//	                 Fig. 4 codeword layouts
//	internal/cache   sector-cache hierarchy (Section 5.1)
//	internal/cpu     multicore throughput model (Table 2 processor)
//	internal/imdb    tables, synthetic data, record alignment
//	internal/sql     the Table 3 SQL dialect: lexer, parser, planner
//	internal/design  the evaluated design points and their data layouts
//	internal/sim     the full-system simulator and query executor
//
// Regenerate every table and figure with:
//
//	go run ./cmd/samfig -exp all
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package sam
