GO ?= go

.PHONY: build test race vet check test-runner bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole tree under the race detector.
race:
	$(GO) test -race ./...

# test-runner exercises the parallel sweep-runner subsystem (and the
# experiment drivers built on it) under the race detector.
test-runner:
	$(GO) test -race ./internal/runner ./internal/core

# check is the CI gate: static analysis plus the full race-detector run.
check: vet race

# bench-parallel measures what the worker pool buys on a sweep grid.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Parallelism' -benchtime 1x .
