GO ?= go

.PHONY: build test race vet check test-runner bench bench-parallel profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the whole tree under the race detector.
race:
	$(GO) test -race ./...

# test-runner exercises the parallel sweep-runner subsystem (and the
# experiment drivers built on it) under the race detector.
test-runner:
	$(GO) test -race ./internal/runner ./internal/core

# check is the CI gate: static analysis plus the full race-detector run.
check: vet race

# bench runs the whole Benchmark* suite with -benchmem and writes a
# machine-readable BENCH_<date>.json baseline (scripts/bench.sh).
bench:
	./scripts/bench.sh

# bench-parallel measures what the worker pool buys on a sweep grid.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Parallelism' -benchtime 1x .

# profile runs a representative query under the CPU and heap profilers and
# dumps the machine-readable run report; inspect with `go tool pprof`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/samsim -design SAM-en -bench Q3 \
		-cpuprofile profiles/samsim.cpu.pprof -memprofile profiles/samsim.mem.pprof \
		-stats-json profiles/samsim.stats.json
	@echo "wrote profiles/samsim.{cpu,mem}.pprof and profiles/samsim.stats.json"
