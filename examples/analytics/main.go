// Analytics: the Fig. 15 parameter-space study as an interactive report —
// how SAM-en's advantage over the row-store baseline moves with query
// selectivity and projectivity, rendered as text sparklines.
//
//	go run ./examples/analytics
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"sam/internal/core"
)

const records = 2048

func bar(v, max float64) string {
	n := int(v / max * 40)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

func main() {
	fmt.Println("SAM-en speedup on the arithmetic query (8 fields projected)")
	fmt.Println("as selectivity grows — strided gathers amortize better when")
	fmt.Println("more of each gathered group is useful:")
	fmt.Println()
	for _, sel := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{
			Query: core.Arithmetic, Selectivity: sel, Projected: 8,
		}, records, core.Par{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f%%  %5.2fx  %s\n", sel*100, vals["SAM-en"], bar(vals["SAM-en"], 10))
	}

	fmt.Println()
	fmt.Println("...and as projectivity grows (50% selected), the row store")
	fmt.Println("catches up — touching most of each record favors plain rows:")
	fmt.Println()
	for _, proj := range []int{2, 8, 32, 64, 127} {
		vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{
			Query: core.Arithmetic, Selectivity: 0.5, Projected: proj,
		}, records, core.Par{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d fields  %5.2fx  %s\n", proj, vals["SAM-en"], bar(vals["SAM-en"], 10))
	}

	fmt.Println()
	fmt.Println("The aggregate query closes RC-NVM's field-switch gap (the")
	fmt.Println("paper's Fig. 15g observation): one field at a time means no")
	fmt.Println("column-to-column row conflicts.")
	fmt.Println()
	fmt.Printf("  %-12s %12s %12s\n", "query", "SAM-en", "RC-NVM-wd")
	for _, k := range []core.SweepQueryKind{core.Arithmetic, core.Aggregate} {
		vals, err := core.RunSweepPoint(context.Background(), core.SweepPoint{
			Query: k, Selectivity: 0.5, Projected: 8,
		}, records, core.Par{})
		if err != nil {
			log.Fatal(err)
		}
		name := "arithmetic"
		if k == core.Aggregate {
			name = "aggregate"
		}
		fmt.Printf("  %-12s %11.2fx %11.2fx\n", name, vals["SAM-en"], vals["RC-NVM-wd"])
	}
	fmt.Println()
	fmt.Println("Full sweeps: go run ./cmd/samfig -exp fig15")
}
