// Quickstart: load the paper's wide table, run one analytical query on
// commodity DRAM and on SAM-en, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/imdb"
	"sam/internal/sim"
	"sam/internal/sql"
)

func main() {
	// A 16Ki-record Ta (1KB records, 128 fields) — 16MB, double the LLC.
	const records = 16 << 10
	query := "SELECT SUM(f9) FROM Ta WHERE f10 > x"
	params := sql.Params{"x": 2} // f10 is categorical {0..3}: ~25% selected

	run := func(kind design.Kind) *sim.QueryResult {
		d := design.New(kind, design.Options{})
		s := sim.NewSystem(d)
		s.AddTable(imdb.NewTable(imdb.Ta(records), 42), false)
		r, err := s.RunQuery(query, params)
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		return r
	}

	base := run(design.Baseline)
	sam := run(design.SAMEn)

	fmt.Println("query:   ", query)
	fmt.Printf("matched:  %d of %d records (%.1f%%)\n",
		base.Rows, records, 100*float64(base.Rows)/records)
	fmt.Printf("sum(f9):  %.6g\n", base.Aggregates[0])
	if sam.Aggregates[0] != base.Aggregates[0] || sam.Rows != base.Rows {
		log.Fatal("designs disagree on the answer — that must never happen")
	}
	fmt.Println()
	fmt.Printf("%-10s %12s %14s %10s\n", "design", "cycles", "mem requests", "row hits")
	for _, r := range []struct {
		name string
		res  *sim.QueryResult
	}{{"baseline", base}, {"SAM-en", sam}} {
		st := r.res.Stats
		fmt.Printf("%-10s %12d %14d %9.1f%%\n", r.name, st.Cycles, st.MemRequests, st.RowHitRate*100)
	}
	fmt.Println()
	fmt.Printf("SAM-en speedup: %.2fx  (strided bursts: %d, mode switches: %d)\n",
		sim.Speedup(base.Stats, sam.Stats),
		sam.Stats.Device.StrideReads, sam.Stats.Device.ModeSwitches)
	fmt.Println()
	fmt.Println("The same comparison across all designs and all 18 benchmark")
	fmt.Println("queries: go run ./cmd/samfig -exp fig12")
	_ = core.Benchmark // see internal/core for the full harness
}
