// HTAP: the paper's motivating scenario — one database serving both
// transactional (row-preferring, Qs) and analytical (column-preferring, Q)
// work. A fixed row/column store must sacrifice one side; SAM accelerates
// the analytical side on a row store without hurting the transactional one.
//
//	go run ./examples/htap
package main

import (
	"context"
	"fmt"
	"log"

	"sam/internal/core"
	"sam/internal/design"
	"sam/internal/sim"
	"sam/internal/stats"
)

func main() {
	w := core.Workload{TaRecords: 4 << 10, TbRecords: 32 << 10, Seed: 99}

	// An HTAP mix: analytical scans and aggregates interleaved with
	// transactional point updates, inserts, and record fetches.
	mix := []string{"Q1", "Q4", "Q11", "Qs2", "Q5", "Qs6", "Q9", "Qs4"}
	byName := map[string]core.BenchQuery{}
	for _, q := range core.Benchmark() {
		byName[q.Name] = q
	}

	designs := []design.Kind{design.SAMEn, design.SAMSub, design.RCNVMWd, design.GSDRAMecc}
	tb := stats.NewTable(append([]string{"query", "class"}, names(designs)...)...)

	totals := map[design.Kind][]float64{}
	for _, name := range mix {
		q := byName[name]
		row := []string{q.Name, q.Class.String()}
		for _, k := range designs {
			rs, err := core.RunComparison(context.Background(), []design.Kind{k}, design.Options{}, w, q, core.Par{})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.2fx", rs[0].Speedup))
			totals[k] = append(totals[k], rs[0].Speedup)
		}
		tb.AddRow(row...)
	}
	gm := []string{"gmean", ""}
	for _, k := range designs {
		gm = append(gm, fmt.Sprintf("%.2fx", stats.Gmean(totals[k])))
	}
	tb.AddRow(gm...)

	fmt.Println("HTAP mix, speedups vs row-store commodity DRAM:")
	fmt.Println()
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("Read it as the paper's Table 1 in action: SAM-en wins the Q")
	fmt.Println("queries outright and holds 1.0x on the Qs queries, while the")
	fmt.Println("dual-addressing designs (SAM-sub, RC-NVM) pay for their row")
	fmt.Println("interleaving on every transactional access.")
	_ = sim.Speedup // (used indirectly through core)
}

func names(kinds []design.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}
