// Reliability: the paper's central compatibility argument, executed on the
// real codecs. Chipkill ECC survives a dead chip on every SAM burst layout;
// GS-DRAM's gathered bursts structurally cannot carry matching check
// symbols; and the stride I/O modes (Fig. 7) extract exactly the bytes the
// codewords need.
//
//	go run ./examples/reliability
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"sam/internal/dram"
	"sam/internal/ecc"
)

func main() {
	rng := rand.New(rand.NewSource(2021))

	fmt.Println("1. Chipkill under a dead chip")
	fmt.Println("   ---------------------------")
	for _, scheme := range []ecc.Scheme{ecc.SchemeSSC, ecc.SchemeSSCVariant, ecc.SchemeSSCDSD} {
		codec := ecc.NewChipkill(scheme)
		data := make([]byte, codec.DataBytes())
		rng.Read(data)
		burst := codec.Encode(data)
		dead := rng.Intn(codec.Chips())
		burst.CorruptChip(dead, 0xA5)
		got, corrected, err := codec.Decode(burst)
		if err != nil {
			log.Fatalf("%v: chip %d killed the burst: %v", scheme, dead, err)
		}
		ok := bytes.Equal(got, data)
		fmt.Printf("   %-12s chip %2d of %2d dead -> corrected %d symbol(s), data intact: %v\n",
			scheme, dead, codec.Chips(), corrected, ok)
	}

	fmt.Println()
	fmt.Println("2. Why GS-DRAM cannot keep chipkill (Section 3.3.1)")
	fmt.Println("   -------------------------------------------------")
	codec := ecc.NewChipkill(ecc.SchemeSSC)
	rows := make([]*ecc.Burst, ecc.SSCDataChips)
	for i := range rows {
		data := make([]byte, 64)
		rng.Read(data)
		rows[i] = codec.Encode(data)
	}
	gathered := ecc.GSDRAMStridedBurst(rows)
	fmt.Printf("   single-row burst passes verification:   %v\n", codec.IntegrityOK(rows[0]))
	fmt.Printf("   gathered 16-row strided burst passes:    %v\n", codec.IntegrityOK(gathered))
	fmt.Println("   (each chip answers from a different row; the two check")
	fmt.Println("    chips can only speak for one of them)")

	fmt.Println()
	fmt.Println("3. SAM-IO's stride modes on the common-die I/O buffer (Fig. 7)")
	fmt.Println("   ------------------------------------------------------------")
	var io dram.IOBuffer
	var words [dram.NumIOBuffers][dram.BufBytes]byte
	for b := range words {
		for l := range words[b] {
			words[b][l] = byte(0x10*b + l) // buffer b, lane l
		}
	}
	io.LoadWide(words) // the wide (x16-class) internal fetch
	for lane := 0; lane < dram.LanesPerBuf; lane++ {
		out := io.SerializeStride(lane)
		fmt.Printf("   Sx4_%d drives lane %d of all four buffers: % x\n", lane, lane, out)
	}
	fmt.Println("   SAM-en adds the transposed (yz-plane) serializers, Fig. 8:")
	tr := io.Transpose()
	fmt.Printf("   yz-read 0:  % x  == transposed buffer 0: % x\n", io.SerializeYZ(0), tr.Buf[0])

	fmt.Println()
	fmt.Println("4. SEC-DED (desktop ECC) for contrast: 1-bit correct, 2-bit detect")
	fmt.Println("   ----------------------------------------------------------------")
	var sd ecc.SECDED
	word := rng.Uint64()
	cw := sd.Encode(word)
	cw.Data ^= 1 << 17
	r1 := sd.Decode(&cw)
	fmt.Printf("   single bit flip:  %v (data restored: %v)\n", r1 == ecc.CorrectedSingle, cw.Data == word)
	cw = sd.Encode(word)
	cw.Data ^= 3 << 40
	r2 := sd.Decode(&cw)
	fmt.Printf("   double bit flip:  detected=%v\n", r2 == ecc.DetectedDouble)
}
